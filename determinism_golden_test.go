// Determinism regression gate for the zero-allocation hot path.
//
// The packet free list, the arena-backed router state, and the ring-deque
// source queues are pure memory-layout changes: they must not perturb a
// single scheduling decision. These tests pin the simulator to golden
// fingerprints captured from the seed engine (pre-pooling, pre-arena), so
// any future "optimization" that changes simulated behavior — reuse-order
// dependence, iteration-order dependence, stale state surviving a packet
// reset — fails loudly instead of silently shifting every result.
// The tests live in the external test package: they drive the engine
// only through importable API (sim, experiments, server), and the
// server import would otherwise cycle through internal/cli back into
// this package's facade.
package stcc_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dispatch"
	"repro/internal/experiments"
	"repro/internal/resultcache/fsstore"
	"repro/internal/resultcache/memstore"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/sim"
)

// resultFingerprint hashes the full JSON encoding of a Result: every
// statistic, series sample, and trace row contributes, so two runs agree
// only if they agree cycle for cycle. It panics rather than taking a
// *testing.T because it also runs on experiment-runner worker goroutines,
// where FailNow is not allowed.
func resultFingerprint(r sim.Result) string {
	data, err := json.Marshal(r)
	if err != nil {
		panic(err)
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// goldenCase is one pinned configuration. The fingerprints were captured
// from the seed engine (commit 383a7bf, before packet pooling and the
// router arena) on a 8-ary 2-cube at rate 0.05, seed 3; the pooled engine
// must reproduce them bit for bit.
type goldenCase struct {
	name string
	want string
	mut  func(*sim.Config)
}

func goldenCases() []goldenCase {
	return []goldenCase{
		// Recovery mode past the deadlock threshold: 33 Disha recoveries,
		// so the fingerprint covers the drain path recycling packets
		// mid-recovery.
		{"base-recovery", "5e65aff289db3e1c",
			func(c *sim.Config) { c.Scheme = sim.Scheme{Kind: sim.Base} }},
		// Self-tuned with the decision trace kept: the fingerprint covers
		// the side-band, estimator, tuner, and trace rows.
		{"tune-recovery", "f5503dcc86d2f5b3",
			func(c *sim.Config) { c.Scheme = sim.Scheme{Kind: sim.SelfTuned, KeepTrace: true} }},
		// Duato avoidance: escape-lane routing, zero recoveries.
		{"tune-avoidance", "8cbecb82ea79b2dd",
			func(c *sim.Config) {
				c.Mode = router.Avoidance
				c.Scheme = sim.Scheme{Kind: sim.SelfTuned}
			}},
		// ALO baseline: the fingerprint covers the free-VC admission test
		// in the injection path (19 recoveries at this load).
		{"alo-recovery", "1fd22738f97075c1",
			func(c *sim.Config) { c.Scheme = sim.Scheme{Kind: sim.ALO} }},
		// Busy-VC counting baseline at its default limit: covers the busy
		// output-VC census each injection consults.
		{"busyvc-recovery", "3a4764ea7dd2ed8e",
			func(c *sim.Config) { c.Scheme = sim.Scheme{Kind: sim.BusyVC} }},
		// Static global threshold at 120 full buffers: covers the
		// side-band gather and fixed-threshold throttle without the tuner.
		{"static-recovery", "d5d669780f9c2c24",
			func(c *sim.Config) {
				c.Scheme = sim.Scheme{Kind: sim.StaticGlobal, StaticThreshold: 120}
			}},
		// AIMD window controller: the fingerprint covers the DECbit
		// marking path (router occupancy fold, cycle-stable snapshot,
		// header marks) and the per-source window state machine fed by
		// the injection/delivery feedback events.
		{"aimd-recovery", "16c6f2bad737ca24",
			func(c *sim.Config) { c.Scheme = sim.Scheme{Kind: sim.AIMD} }},
		// Notification-based throttling: the fingerprint additionally
		// covers the side-band notification wheel (rising-edge broadcast,
		// hop-delay-scaled delivery) and staleness-gated injection.
		{"notify-recovery", "8a1f4217cb170064",
			func(c *sim.Config) { c.Scheme = sim.Scheme{Kind: sim.Notify} }},
	}
}

func goldenConfig(gc goldenCase) sim.Config {
	cfg := sim.NewConfig()
	cfg.K, cfg.N = 8, 2
	cfg.VCs, cfg.BufDepth = 3, 4
	cfg.PacketLength = 8
	cfg.DeadlockTimeout = 64
	cfg.WarmupCycles = 400
	cfg.MeasureCycles = 2400
	cfg.Rate = 0.05
	cfg.Seed = 3
	gc.mut(&cfg)
	return cfg
}

// TestDeterminismGoldenFingerprints checks the pooled, arena-backed
// engine against the seed engine's fingerprints.
func TestDeterminismGoldenFingerprints(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			t.Parallel()
			r, err := sim.Run(goldenConfig(gc))
			if err != nil {
				t.Fatal(err)
			}
			if got := resultFingerprint(r); got != gc.want {
				t.Errorf("fingerprint %s, want seed-engine golden %s (recoveries %d, delivered %d)",
					got, gc.want, r.Recoveries, r.PacketsDelivered)
			}
		})
	}
}

// TestDeterminismAcrossWorkerCounts runs the golden grid through the
// experiment runner at Workers=1 and Workers=8 and requires identical
// fingerprints: per-engine free lists must keep results independent of
// how simulations are scheduled onto goroutines.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	cases := goldenCases()
	run := func(workers int) []string {
		fps := make([]string, len(cases))
		err := experiments.Runner{Workers: workers}.ForEach(len(cases), func(i int) error {
			r, err := sim.Run(goldenConfig(cases[i]))
			if err != nil {
				return err
			}
			fps[i] = resultFingerprint(r)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return fps
	}
	serial := run(1)
	wide := run(8)
	for i, gc := range cases {
		if serial[i] != wide[i] {
			t.Errorf("%s: Workers=1 fingerprint %s != Workers=8 fingerprint %s",
				gc.name, serial[i], wide[i])
		}
		if serial[i] != gc.want {
			t.Errorf("%s: runner fingerprint %s, want golden %s", gc.name, serial[i], gc.want)
		}
	}
}

// TestShardedSteppingAcrossRegistry sweeps every registered experiment
// at a tiny scale and requires ShardWorkers=8 to reproduce the serial
// fingerprint bit for bit on each distinct configuration. The registry
// configs are 256-node networks (four 64-node shards at 8 workers; the
// 64-node golden grid above collapses to a single shard and steps
// serially), so this is the determinism gate for the parallel rounds:
// every scheme kind, deadlock mode, traffic pattern and switching
// discipline the paper's evaluation uses goes through the sharded
// barrier/merge path and must be indistinguishable from serial.
// It also pins the knobs' fingerprint neutrality: configs differing
// only in ShardWorkers or ShardDispatch content-address identically.
// The sharded run pins Dispatch to "sharded" so the parallel rounds are
// actually exercised even on a single-CPU runner, where the default
// adaptive policy would (correctly) step everything serially.
func TestShardedSteppingAcrossRegistry(t *testing.T) {
	tiny := experiments.Scale{Warmup: 200, Measure: 1000, BurstLow: 300, BurstHigh: 450}
	seen := map[string]bool{}
	var configs []sim.Config
	var labels []string
	for _, name := range experiments.Names() {
		e, ok := experiments.Lookup(name)
		if !ok {
			t.Fatalf("registry names %q but Lookup misses it", name)
		}
		for _, g := range e.Spec(tiny).Groups {
			if len(g.Points) == 0 {
				continue
			}
			// One point per group bounds runtime while covering every
			// curve's scheme/mode/pattern combination.
			pt := g.Points[0]
			fp, err := pt.Config.Fingerprint()
			if err != nil {
				t.Fatalf("%s/%s: %v", name, g.Name, err)
			}
			if seen[fp] {
				continue
			}
			seen[fp] = true
			configs = append(configs, pt.Config)
			labels = append(labels, name+"/"+g.Name)
		}
	}
	if len(configs) < 8 {
		t.Fatalf("registry sweep found only %d distinct configs; expected the full catalog", len(configs))
	}
	for i, cfg := range configs {
		i, cfg := i, cfg
		t.Run(labels[i], func(t *testing.T) {
			t.Parallel()
			serCfg := cfg
			serCfg.ShardWorkers = 1
			serCfg.ShardDispatch = router.DispatchSerial
			shCfg := cfg
			shCfg.ShardWorkers = 8
			shCfg.ShardDispatch = router.DispatchSharded
			serFP, err := serCfg.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			shFP, err := shCfg.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			if serFP != shFP {
				t.Fatalf("config fingerprint depends on ShardWorkers/ShardDispatch: %s vs %s", serFP, shFP)
			}
			adCfg := cfg
			adCfg.ShardDispatch = router.DispatchAdaptive
			adFP, err := adCfg.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			if adFP != serFP {
				t.Fatalf("config fingerprint depends on ShardDispatch: %s vs %s", adFP, serFP)
			}
			serial, err := sim.Run(serCfg)
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := sim.Run(shCfg)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := resultFingerprint(serial), resultFingerprint(sharded); a != b {
				t.Errorf("ShardWorkers=1 fingerprint %s != ShardWorkers=8 fingerprint %s (delivered %d vs %d, recoveries %d vs %d)",
					a, b, serial.PacketsDelivered, sharded.PacketsDelivered,
					serial.Recoveries, sharded.Recoveries)
			}
		})
	}
}

// TestDeterminismNewSchemesSaturatedSharded is the sharded-twin gate
// for the feedback-driven controllers at a deliberately saturated
// operating point: a 256-node network (four 64-node shards at 8
// workers) driven past saturation, where the congestion bits toggle
// constantly, AIMD windows halve and regrow, and the notification wheel
// carries steady traffic. ShardWorkers=8 must reproduce the serial run
// bit for bit — the proof that DECbit maintenance and feedback delivery
// are order-free across the shard barrier.
func TestDeterminismNewSchemesSaturatedSharded(t *testing.T) {
	for _, sch := range []sim.Scheme{{Kind: sim.AIMD}, {Kind: sim.Notify}} {
		sch := sch
		t.Run(string(sch.Kind), func(t *testing.T) {
			t.Parallel()
			cfg := sim.NewConfig()
			cfg.WarmupCycles, cfg.MeasureCycles = 200, 1200
			cfg.Rate = 0.06
			cfg.Seed = 11
			cfg.Scheme = sch
			serCfg := cfg
			serCfg.ShardWorkers = 1
			serCfg.ShardDispatch = router.DispatchSerial
			shCfg := cfg
			shCfg.ShardWorkers = 8
			shCfg.ShardDispatch = router.DispatchSharded
			serial, err := sim.Run(serCfg)
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := sim.Run(shCfg)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := resultFingerprint(serial), resultFingerprint(sharded); a != b {
				t.Errorf("ShardWorkers=1 fingerprint %s != ShardWorkers=8 fingerprint %s (delivered %d vs %d)",
					a, b, serial.PacketsDelivered, sharded.PacketsDelivered)
			}
		})
	}
}

// TestDeterminismThroughResultCache runs the golden grid twice through a
// cache-attached runner. The first pass populates the content-addressed
// cache; the second is served entirely from it. Both must reproduce the
// seed-engine fingerprints, which pins the cache's JSON round trip to
// "bit-identical to a fresh run".
func TestDeterminismThroughResultCache(t *testing.T) {
	cache, err := fsstore.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cases := goldenCases()
	spec := experiments.NewSpec("goldens", "determinism golden grid")
	for _, gc := range cases {
		spec.AddGroup(gc.name, experiments.Point{Label: gc.name, Config: goldenConfig(gc)})
	}
	runner := experiments.Runner{Cache: cache}
	for pass, label := range []string{"fresh", "cached"} {
		grouped, err := runner.RunSpec(spec)
		if err != nil {
			t.Fatalf("%s pass: %v", label, err)
		}
		for i, gc := range cases {
			if got := resultFingerprint(grouped[i][0]); got != gc.want {
				t.Errorf("%s pass: %s fingerprint %s, want golden %s", label, gc.name, got, gc.want)
			}
		}
		if n, err := cache.Len(); err != nil || n != len(cases) {
			t.Fatalf("after pass %d: cache holds %d entries (err=%v), want %d", pass, n, err, len(cases))
		}
	}
}

// TestDeterminismThroughServer submits the golden grid to stcc-serve
// over HTTP and requires the results that come back through the job
// manager, the JSON result payload, and a second, cache-served
// submission to reproduce the seed-engine fingerprints bit for bit:
// the service path must be indistinguishable from a local run.
func TestDeterminismThroughServer(t *testing.T) {
	cache, err := fsstore.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Cache: cache})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	cases := goldenCases()
	spec := experiments.NewSpec("goldens", "determinism golden grid")
	for _, gc := range cases {
		spec.AddGroup(gc.name, experiments.Point{Label: gc.name, Config: goldenConfig(gc)})
	}
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}

	runJob := func() server.JobStatus {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var sub struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		deadline := time.Now().Add(60 * time.Second)
		for {
			sresp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
			if err != nil {
				t.Fatal(err)
			}
			var st server.JobStatus
			if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			sresp.Body.Close()
			if st.State == server.StateDone {
				return st
			}
			if st.State == server.StateFailed || st.State == server.StateCanceled {
				t.Fatalf("job %s ended %s: %s", sub.ID, st.State, st.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", sub.ID, st.State)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	fresh := runJob()
	cached := runJob()
	if !cached.CacheHit {
		t.Errorf("second submission cacheHit = false, want fully cache-served")
	}
	if !bytes.Equal(fresh.Result, cached.Result) {
		t.Errorf("cached submission's result JSON differs from the fresh run")
	}
	for pass, st := range []server.JobStatus{fresh, cached} {
		var res server.JobResult
		if err := json.Unmarshal(st.Result, &res); err != nil {
			t.Fatal(err)
		}
		if len(res.Groups) != len(cases) {
			t.Fatalf("pass %d: %d result groups, want %d", pass, len(res.Groups), len(cases))
		}
		for i, gc := range cases {
			if got := resultFingerprint(res.Groups[i][0]); got != gc.want {
				t.Errorf("pass %d: %s fingerprint %s, want golden %s", pass, gc.name, got, gc.want)
			}
		}
	}
}

// TestDeterminismThroughDispatch farms the golden grid across two live
// in-process peer daemons plus one dead address, with a single dispatch
// attempt per point so every point that round-robins onto the dead peer
// falls back to local execution. The merged sweep — part remote, part
// local fallback — must be byte-identical to a purely local run and
// reproduce the seed-engine fingerprints: the distributed fabric is not
// allowed to be observable in the results.
func TestDeterminismThroughDispatch(t *testing.T) {
	var peers []string
	for i := 0; i < 2; i++ {
		srv := server.New(server.Config{Cache: memstore.New()})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Errorf("peer shutdown: %v", err)
			}
		}()
		peers = append(peers, ts.URL)
	}
	// A dead peer: bind a port, then close it so connections are refused.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	co, err := dispatch.New(dispatch.Config{
		Peers:    []string{peers[0], deadURL, peers[1]},
		Attempts: 1, // dead-peer points fall back locally instead of retrying
		Backoff:  time.Millisecond,
		Poll:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	cases := goldenCases()
	spec := experiments.NewSpec("goldens", "determinism golden grid")
	for _, gc := range cases {
		spec.AddGroup(gc.name, experiments.Point{Label: gc.name, Config: goldenConfig(gc)})
	}

	local, err := experiments.Runner{}.RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	farmed, err := experiments.Runner{Remote: co}.RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}

	localJSON, err := json.Marshal(local)
	if err != nil {
		t.Fatal(err)
	}
	farmedJSON, err := json.Marshal(farmed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localJSON, farmedJSON) {
		t.Errorf("farmed sweep is not byte-identical to the local sweep")
	}
	for i, gc := range cases {
		if got := resultFingerprint(farmed[i][0]); got != gc.want {
			t.Errorf("%s fingerprint %s, want golden %s", gc.name, got, gc.want)
		}
	}

	// The topology guarantees both paths were exercised: eight points
	// round-robin over three peer slots, so at least two landed on the
	// dead address (local fallback) and at least four went remote.
	st := co.Stats()
	if st.Remote == 0 {
		t.Error("no point was executed remotely; the fabric never engaged")
	}
	if st.Fallbacks == 0 {
		t.Error("no point fell back locally; the dead peer was never hit")
	}
	if st.Dispatched != int64(len(cases)) {
		t.Errorf("dispatched %d points, want %d", st.Dispatched, len(cases))
	}
	if st.Remote+st.Fallbacks != st.Dispatched {
		t.Errorf("remote %d + fallbacks %d != dispatched %d", st.Remote, st.Fallbacks, st.Dispatched)
	}
}
