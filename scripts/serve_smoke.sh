#!/usr/bin/env bash
# Smoke test for stcc-serve: build it, boot it, hit the read-only
# endpoints, run one tiny job end to end, and shut it down cleanly.
# CI runs this after the unit tests; `make serve-smoke` runs it locally.
set -euo pipefail

ADDR="${STCC_SERVE_ADDR:-127.0.0.1:18642}"
BASE="http://$ADDR"
WORKDIR="$(mktemp -d)"
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

go build -o "$WORKDIR/stcc-serve" ./cmd/stcc-serve

"$WORKDIR/stcc-serve" -addr "$ADDR" -cache "$WORKDIR/cache" -drain 30s \
    >"$WORKDIR/serve.log" 2>&1 &
SERVE_PID=$!

for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "stcc-serve died during startup:"; cat "$WORKDIR/serve.log"; exit 1
    fi
    sleep 0.2
done
# Capture bodies before grepping: under pipefail, `curl | grep -q`
# fails spuriously when grep exits at the first match and curl takes
# EPIPE on the rest of the body.
curl -fsS "$BASE/healthz" >"$WORKDIR/body"
grep -q '"ok"' "$WORKDIR/body"
echo "healthz: ok"

curl -fsS "$BASE/v1/version" >"$WORKDIR/body"
grep -q '"go_version"' "$WORKDIR/body"
echo "version: ok"

curl -fsS "$BASE/v1/registry" >"$WORKDIR/body"
grep -q '"fig4"' "$WORKDIR/body"
echo "registry: ok"

# One tiny simulation (a 4-ary 2-cube, 500 cycles) as a bare config —
# the same wire form "stcc run -spec" reads.
CONFIG='{"version":1,"k":4,"n":2,"vcs":3,"buf_depth":8,"packet_length":16,"mode":"recovery","deadlock_timeout":160,"sideband_hop_delay":2,"sideband_mechanism":"sideband","selection":"rotate","switching":"wormhole","pattern":"random","rate":0.005,"scheme":{"kind":"base"},"warmup_cycles":100,"measure_cycles":400,"seed":1}'
JOB=$(curl -fsS -d "$CONFIG" "$BASE/v1/jobs" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
if [ -z "$JOB" ]; then echo "job submission returned no id"; exit 1; fi
echo "submitted: $JOB"

STATE=""
for i in $(seq 1 150); do
    STATE=$(curl -fsS "$BASE/v1/jobs/$JOB" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
    case "$STATE" in done) break ;; failed|canceled) break ;; esac
    sleep 0.2
done
if [ "$STATE" != "done" ]; then
    echo "job ended in state '$STATE'"; curl -fsS "$BASE/v1/jobs/$JOB"; exit 1
fi
echo "job: done"

curl -fsS "$BASE/metrics.json" >"$WORKDIR/body"
grep -q '"jobs_done": 1' "$WORKDIR/body"
echo "metrics.json: ok"

# The Prometheus text page must carry the same counter.
curl -fsS "$BASE/metrics" >"$WORKDIR/body"
grep -q '^stcc_jobs_done_total 1$' "$WORKDIR/body"
grep -q '^# TYPE stcc_jobs_done_total counter$' "$WORKDIR/body"
echo "metrics (prometheus): ok"

# The daemon's result store is reachable over /v1/cache (one entry: the
# job's single point).
curl -fsS "$BASE/v1/cache" >"$WORKDIR/body"
grep -q '"entries": 1' "$WORKDIR/body"
echo "cache endpoint: ok"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
echo "drained: ok"
echo "serve smoke test passed"
