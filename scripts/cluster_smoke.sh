#!/usr/bin/env bash
# Smoke test for the distributed sweep fabric: boot two peer stcc-serve
# daemons on loopback, farm a sweep across them from a coordinating
# stcc run, and require the merged output to be byte-identical to a
# purely local run — first with both peers healthy, then with one peer
# dead (local fallback). CI runs this after the unit tests;
# `make cluster-smoke` runs it locally.
set -euo pipefail

ADDR1="${STCC_PEER1_ADDR:-127.0.0.1:18651}"
ADDR2="${STCC_PEER2_ADDR:-127.0.0.1:18652}"
DEAD="127.0.0.1:18699" # never bound: connection refused
WORKDIR="$(mktemp -d)"
PIDS=()
trap 'for p in "${PIDS[@]}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$WORKDIR"' EXIT

go build -o "$WORKDIR/stcc-serve" ./cmd/stcc-serve
go build -o "$WORKDIR/stcc" ./cmd/stcc

boot_peer() { # addr cache-dir log-name
    "$WORKDIR/stcc-serve" -addr "$1" -cache "$2" -drain 30s \
        >"$WORKDIR/$3.log" 2>&1 &
    PIDS+=($!)
    local pid=$!
    for i in $(seq 1 50); do
        if curl -fsS "http://$1/healthz" >/dev/null 2>&1; then return 0; fi
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "peer on $1 died during startup:"; cat "$WORKDIR/$3.log"; exit 1
        fi
        sleep 0.2
    done
    echo "peer on $1 never became healthy"; cat "$WORKDIR/$3.log"; exit 1
}

boot_peer "$ADDR1" "$WORKDIR/cache1" peer1
boot_peer "$ADDR2" "$WORKDIR/cache2" peer2
echo "peers: up"

# A four-point sweep spec (two seeds x two rates on a 4-ary 2-cube,
# sub-second points), in the same wire form "stcc emit-spec" writes.
cat >"$WORKDIR/spec.json" <<'EOF'
{
  "version": 1,
  "name": "cluster-smoke",
  "groups": [
    {
      "name": "g",
      "points": [
        {"label": "s1 r0.005", "config": {"version":1,"k":4,"n":2,"vcs":3,"buf_depth":8,"packet_length":16,"mode":"recovery","deadlock_timeout":160,"sideband_hop_delay":2,"sideband_mechanism":"sideband","selection":"rotate","switching":"wormhole","pattern":"random","rate":0.005,"scheme":{"kind":"base"},"warmup_cycles":100,"measure_cycles":400,"seed":1}},
        {"label": "s2 r0.005", "config": {"version":1,"k":4,"n":2,"vcs":3,"buf_depth":8,"packet_length":16,"mode":"recovery","deadlock_timeout":160,"sideband_hop_delay":2,"sideband_mechanism":"sideband","selection":"rotate","switching":"wormhole","pattern":"random","rate":0.005,"scheme":{"kind":"base"},"warmup_cycles":100,"measure_cycles":400,"seed":2}},
        {"label": "s1 r0.01",  "config": {"version":1,"k":4,"n":2,"vcs":3,"buf_depth":8,"packet_length":16,"mode":"recovery","deadlock_timeout":160,"sideband_hop_delay":2,"sideband_mechanism":"sideband","selection":"rotate","switching":"wormhole","pattern":"random","rate":0.01,"scheme":{"kind":"tune"},"warmup_cycles":100,"measure_cycles":400,"seed":1}},
        {"label": "s2 r0.01",  "config": {"version":1,"k":4,"n":2,"vcs":3,"buf_depth":8,"packet_length":16,"mode":"recovery","deadlock_timeout":160,"sideband_hop_delay":2,"sideband_mechanism":"sideband","selection":"rotate","switching":"wormhole","pattern":"random","rate":0.01,"scheme":{"kind":"tune"},"warmup_cycles":100,"measure_cycles":400,"seed":2}}
      ]
    }
  ]
}
EOF

# The reference: a purely local run.
"$WORKDIR/stcc" run -spec "$WORKDIR/spec.json" -json >"$WORKDIR/local.json"

# The same sweep farmed across both peers must merge byte-identically.
"$WORKDIR/stcc" run -spec "$WORKDIR/spec.json" -json \
    -peers "$ADDR1,$ADDR2" >"$WORKDIR/farmed.json"
cmp "$WORKDIR/local.json" "$WORKDIR/farmed.json"
echo "2-peer sweep: byte-identical to local"

# Both peers actually executed work (their caches filed entries).
for addr in "$ADDR1" "$ADDR2"; do
    curl -fsS "http://$addr/v1/cache" >"$WORKDIR/body"
    if grep -q '"entries": 0' "$WORKDIR/body"; then
        echo "peer $addr executed no points"; exit 1
    fi
done
echo "peers: both executed points"

# With a dead peer in the list, points that land on it fall back to
# local execution — the output must still be byte-identical.
"$WORKDIR/stcc" run -spec "$WORKDIR/spec.json" -json \
    -peers "$ADDR1,$DEAD,$ADDR2" >"$WORKDIR/degraded.json"
cmp "$WORKDIR/local.json" "$WORKDIR/degraded.json"
echo "degraded sweep (1 dead peer): byte-identical to local"

# A peer's cache is readable as a remote result store: pointing -cache
# at peer 1 serves the whole sweep from its entries.
"$WORKDIR/stcc" run -spec "$WORKDIR/spec.json" -json \
    -cache "http://$ADDR1" >"$WORKDIR/remote-cache.json"
cmp "$WORKDIR/local.json" "$WORKDIR/remote-cache.json"
echo "remote result store: byte-identical to local"

echo "cluster smoke test passed"
