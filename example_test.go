package stcc_test

import (
	"fmt"

	stcc "repro"
)

// Example runs a small network at light load with the self-tuned
// controller and reports that everything offered was delivered.
func Example() {
	cfg := stcc.NewConfig()
	cfg.K = 4 // 16 nodes: tiny and fast
	cfg.Rate = 0.002
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 4_000
	cfg.Scheme = stcc.Scheme{Kind: stcc.SelfTuned}
	res, err := stcc.Run(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.PacketsDelivered == res.PacketsCreated)
	// Output: true
}

// ExampleNewPattern shows the paper's butterfly permutation: the most and
// least significant address bits swap.
func ExampleNewPattern() {
	p, _ := stcc.NewPattern(stcc.Butterfly, 256)
	fmt.Printf("%08b\n", p.Dest(0b10110010, nil))
	// Output: 00110011
}

// ExampleNewTorus shows the paper's network dimensions.
func ExampleNewTorus() {
	topo, _ := stcc.NewTorus(16, 2)
	fmt.Println(topo.Nodes(), topo.TotalVCBuffers(3))
	// Output: 256 3072
}

// ExampleDefaultTunerConfig prints the paper's tuning steps for the
// 16-ary 2-cube: increment 1% and decrement 4% of all 3072 buffers.
func ExampleDefaultTunerConfig() {
	tc := stcc.DefaultTunerConfig(3072)
	fmt.Printf("%.2f %.2f\n",
		tc.IncrementFraction*float64(tc.TotalBuffers),
		tc.DecrementFraction*float64(tc.TotalBuffers))
	// Output: 30.72 122.88
}
