# Reproducible local equivalents of the CI jobs. `make lint test` is
# what a PR must pass; `make fuzz-smoke` mirrors CI's fuzz job.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race bench bench-json determinism lint fmt-check vet stcc-vet vet-json govulncheck fuzz-smoke spec-roundtrip experiments-doc serve serve-smoke cluster-smoke

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Regenerate the checked-in benchmark-trajectory report. Uses real
# benchtime (minutes, not a smoke run); see README.md ("Benchmark
# trajectory") for how to read BENCH_*.json.
BENCH_LABEL ?= PR10
bench-json:
	$(GO) run ./cmd/stcc-bench -label $(BENCH_LABEL) -repeat 3 -out BENCH_$(BENCH_LABEL).json

# The determinism gate CI runs as its own job: golden fingerprints, the
# serial-vs-sharded twin comparison (including mid-run hysteresis flips
# of the adaptive dispatch policy), and the registry-wide worker sweep,
# all under the race detector so the parallel stepper's barrier and
# merge paths are checked for memory-model bugs, not just for byte-equal
# results.
determinism:
	$(GO) test -race -run 'TestSharded|TestShardPartition|TestTracingForcesSerial|TestAdaptiveDispatchFlipsMidRun' ./internal/router/
	$(GO) test -race -run 'TestDeterminism|TestShardedSteppingAcrossRegistry' .

# lint is the full static gate: formatting, the standard vet suite, the
# determinism-contract suite, the experiment-spec round trip, and (when
# the tool is available) govulncheck.
lint: fmt-check vet stcc-vet spec-roundtrip govulncheck

# Emit every registry experiment's spec at both scales, re-parse it, and
# require an unchanged content fingerprint (CI runs this too).
spec-roundtrip:
	$(GO) run ./cmd/stcc spec-roundtrip

# Regenerate the registry-derived catalog section of EXPERIMENTS.md.
experiments-doc:
	$(GO) run ./cmd/stcc experiments-doc

# Run the experiment service daemon locally; see README.md ("Running as
# a service") for the API walkthrough.
SERVE_ADDR ?= 127.0.0.1:8080
SERVE_CACHE ?= results/cache
serve:
	$(GO) run ./cmd/stcc-serve -addr $(SERVE_ADDR) -cache $(SERVE_CACHE)

# Boot stcc-serve, drive every endpoint plus one tiny job, and drain it
# (CI runs this after the unit tests).
serve-smoke:
	bash scripts/serve_smoke.sh

# Boot two peer daemons, farm a sweep across them, and require the
# merged output byte-identical to a local run — healthy, degraded (one
# dead peer), and remote-result-store paths. See README.md ("Running a
# cluster").
cluster-smoke:
	bash scripts/cluster_smoke.sh

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# The custom determinism-contract analyzers; see README.md
# ("Determinism contract") for the rules and internal/analyzers for the
# implementation. The baseline is empty (the tree is clean); it exists
# so a future exceptional finding can be acknowledged without turning
# the gate off.
stcc-vet:
	$(GO) run ./cmd/stcc-vet -baseline .stcc-vet-baseline.json ./...

# Machine-readable findings for CI artifacts and editor tooling. Exit
# status matches stcc-vet (2 on non-baselined findings), so CI can both
# archive the report and fail the job from one invocation.
vet-json:
	$(GO) run ./cmd/stcc-vet -format json -baseline .stcc-vet-baseline.json ./... > stcc-vet.json

# govulncheck needs network access to fetch the vuln DB and is not baked
# into every dev container; run it when present, say so when not. CI
# installs it explicitly.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Native Go fuzzing: each target gets a short deterministic-budget run.
# Raise FUZZTIME for a real session.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDORMeshRoute$$' -fuzztime $(FUZZTIME) ./internal/topology
	$(GO) test -run '^$$' -fuzz '^FuzzMinimalPorts$$' -fuzztime $(FUZZTIME) ./internal/topology
	$(GO) test -run '^$$' -fuzz '^FuzzFlitFraming$$' -fuzztime $(FUZZTIME) ./internal/packet
	$(GO) test -run '^$$' -fuzz '^FuzzLatencyAccounting$$' -fuzztime $(FUZZTIME) ./internal/packet
	$(GO) test -run '^$$' -fuzz '^FuzzSplitQuoted$$' -fuzztime $(FUZZTIME) ./internal/analyzers/framework
	$(GO) test -run '^$$' -fuzz '^FuzzWantComment$$' -fuzztime $(FUZZTIME) ./internal/analyzers/framework
