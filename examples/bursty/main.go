// Bursty: the paper's Figure 6/7 experiment. The workload alternates
// low-load phases with heavy bursts whose communication pattern changes
// each time (random, bit-reversal, perfect-shuffle, butterfly). The
// self-tuned controller re-tunes its threshold for every burst; the
// uncontrolled network saturates and collapses.
//
//	go run ./examples/bursty
package main

import (
	"fmt"
	"log"

	stcc "repro"
)

func main() {
	const nodes = 256
	sched, err := stcc.PaperBurstySchedule(nodes, stcc.BurstyOptions{
		// Scaled-down phase lengths keep the example fast; the shapes
		// match the paper's 50k/75k-cycle phases.
		LowDuration:  8_000,
		HighDuration: 12_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Offered load:")
	var at int64
	for _, ph := range sched.Phases {
		fmt.Printf("  cycles %6d-%6d  %-12s %.5f packets/node/cycle\n",
			at, at+ph.Duration, ph.Pattern.Name(), ph.Process.Rate())
		at += ph.Duration
	}

	for _, scheme := range []stcc.Scheme{{Kind: stcc.Base}, {Kind: stcc.SelfTuned}} {
		cfg := stcc.NewConfig()
		cfg.Schedule = sched
		cfg.WarmupCycles = 0
		cfg.MeasureCycles = sched.TotalDuration()
		cfg.SampleInterval = 2_048
		cfg.Scheme = scheme
		res, err := stcc.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: avg latency %.0f cycles, %d recoveries; throughput over time:\n",
			scheme.Kind, res.AvgNetworkLatency, res.Recoveries)
		for i, v := range res.Throughput.Values {
			fmt.Printf("  %6d %s %.3f\n", res.Throughput.CycleAt(i), bar(v), v)
		}
	}
}

// bar renders a simple ASCII intensity bar for a flits/node/cycle value.
func bar(v float64) string {
	n := int(v * 100)
	if n > 40 {
		n = 40
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return fmt.Sprintf("%-40s", b)
}
