// Patterns: different communication patterns saturate a multiprocessor
// network at very different offered loads (the paper's Figure 1). This
// example sweeps the injection rate for uniform random, butterfly,
// bit-reversal and perfect-shuffle traffic on the base (uncontrolled)
// network, then shows the self-tuned controller adapting its threshold
// to each pattern.
//
//	go run ./examples/patterns
package main

import (
	"fmt"
	"log"

	stcc "repro"
)

func main() {
	patterns := []stcc.PatternKind{
		stcc.UniformRandom, stcc.Butterfly, stcc.BitReversal, stcc.PerfectShuffle,
	}
	rates := []float64{0.005, 0.01, 0.02, 0.03}

	fmt.Println("Base network (no congestion control), accepted flits/node/cycle:")
	fmt.Printf("%-10s", "rate")
	for _, p := range patterns {
		fmt.Printf(" %12s", p)
	}
	fmt.Println()
	for _, rate := range rates {
		fmt.Printf("%-10.3f", rate)
		for _, p := range patterns {
			res, err := run(p, rate, stcc.Scheme{Kind: stcc.Base})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12.4f", res.AcceptedFlits)
		}
		fmt.Println()
	}

	fmt.Println("\nSelf-tuned controller at 0.03 packets/node/cycle:")
	for _, p := range patterns {
		res, err := run(p, 0.03, stcc.Scheme{Kind: stcc.SelfTuned})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s accepted %.4f, threshold settled at %5.0f full buffers\n",
			p, res.AcceptedFlits, res.FinalThreshold)
	}
	fmt.Println("\nNote how the tuned threshold differs per pattern: no single")
	fmt.Println("static threshold suits every workload (the paper's Figure 5).")
}

func run(p stcc.PatternKind, rate float64, s stcc.Scheme) (stcc.Result, error) {
	cfg := stcc.NewConfig()
	cfg.Pattern = p
	cfg.Rate = rate
	cfg.Scheme = s
	cfg.WarmupCycles = 4_000
	cfg.MeasureCycles = 12_000
	return stcc.Run(cfg)
}
