// Quickstart: run the paper's 16-ary 2-cube network past its saturation
// point, once without congestion control and once with the self-tuned
// controller, and compare delivered bandwidth and latency.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	stcc "repro"
)

func main() {
	// The paper's network: 256 nodes, 3 VCs of depth 8, 16-flit
	// packets, wormhole switching with Disha deadlock recovery.
	// Short runs keep the example snappy; shapes match the full runs.
	base := stcc.NewConfig()
	base.Rate = 0.04 // packets/node/cycle — well beyond saturation
	base.WarmupCycles = 8_000
	base.MeasureCycles = 32_000

	for _, scheme := range []stcc.Scheme{
		{Kind: stcc.Base},
		{Kind: stcc.SelfTuned},
	} {
		cfg := base
		cfg.Scheme = scheme
		res, err := stcc.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s accepted %.4f flits/node/cycle, latency %5.0f cycles, %4d deadlock recoveries\n",
			scheme.Kind, res.AcceptedFlits, res.AvgNetworkLatency, res.Recoveries)
		if scheme.Kind == stcc.SelfTuned {
			fmt.Printf("      threshold self-tuned to %.0f of %d full buffers\n",
				res.FinalThreshold, cfg.TotalBuffers())
		}
	}
	fmt.Println("\nWithout throttling the network saturates: deadlocked worms")
	fmt.Println("drain through the serialized recovery path and throughput")
	fmt.Println("collapses. The self-tuned controller finds a full-buffer")
	fmt.Println("threshold that keeps the network just below saturation.")
}
