// Hotspot: watch tree saturation form. A fraction of all traffic targets
// one node at the center of the 16x16 torus; the waiting packets fan out
// from the hot node as a growing tree of full buffers (Pfister & Norton's
// classic pathology, the paper's motivating failure mode). The example
// renders per-node full-buffer heatmaps as the tree grows, then shows the
// self-tuned controller containing it.
//
//	go run ./examples/hotspot
package main

import (
	"fmt"
	"log"

	stcc "repro"
)

func main() {
	const k = 16
	hot := stcc.NodeID(8 + 8*k) // center of the grid

	for _, scheme := range []stcc.Scheme{{Kind: stcc.Base}, {Kind: stcc.SelfTuned}} {
		cfg := stcc.NewConfig()
		cfg.WarmupCycles = 0
		cfg.MeasureCycles = 12_000
		cfg.Scheme = scheme
		// A quarter of all packets target the hot node; its delivery
		// channel is ~2x oversubscribed, so waiting packets pile up in
		// a tree around it.
		pattern := stcc.NewHotspotPattern(k*k, hot, 0.25)
		cfg.Schedule = stcc.Steady(pattern, stcc.Bernoulli{P: 0.002})

		engine, err := stcc.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("==== %s ====\n", scheme.Kind)
		res, err := engine.RunWithProgress(4_000, func(now int64) {
			vals := make([]float64, k*k)
			for n := 0; n < k*k; n++ {
				vals[n] = float64(engine.Fabric().FullVCBuffersAt(stcc.NodeID(n)))
			}
			fmt.Printf("cycle %d: %d full buffers network-wide\n",
				now, engine.Fabric().FullVCBuffers())
			fmt.Print(stcc.Heatmap(vals, k))
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: accepted %.4f flits/node/cycle, latency %.0f cycles\n\n",
			scheme.Kind, res.AcceptedFlits, res.AvgNetworkLatency)
	}
	fmt.Println("The base heatmaps show the saturation tree rooted at the hot")
	fmt.Println("node; the self-tuned controller keeps the tree small.")
}
