// Customthrottle: plug a user-defined congestion controller into the
// simulator through the public Throttler interface. The example
// implements a simple probabilistic global throttler — injection
// probability decays as the globally gathered full-buffer count rises —
// and compares it against the paper's self-tuned scheme past saturation.
//
//	go run ./examples/customthrottle
package main

import (
	"fmt"
	"log"
	"math/rand"

	stcc "repro"
)

// probabilistic throttles injection with probability proportional to the
// square of the network's estimated congestion. It receives global
// snapshots by implementing OnSnapshot (the side-band subscribes it
// automatically) and demonstrates that the simulator's control plane is
// open to schemes the paper never evaluated.
type probabilistic struct {
	// knee is the full-buffer count at which injection probability
	// reaches 50%.
	knee float64
	last float64
	rng  *rand.Rand
}

// OnSnapshot receives the side-band's global aggregates.
func (p *probabilistic) OnSnapshot(s stcc.Snapshot) { p.last = float64(s.FullBuffers) }

// AllowInjection implements stcc.Throttler.
func (p *probabilistic) AllowInjection(_ int64, _, _ stcc.NodeID) bool {
	x := p.last / p.knee
	accept := 1 / (1 + x*x)
	return p.rng.Float64() < accept
}

// Tick implements stcc.Throttler.
func (p *probabilistic) Tick(int64) {}

// Name implements stcc.Throttler.
func (p *probabilistic) Name() string { return "probabilistic" }

func main() {
	schemes := []stcc.Scheme{
		{Kind: stcc.Base},
		{Kind: stcc.CustomScheme, Custom: &probabilistic{knee: 400, rng: rand.New(rand.NewSource(7))}},
		{Kind: stcc.SelfTuned},
	}
	fmt.Println("16-ary 2-cube past saturation (0.04 packets/node/cycle):")
	for _, s := range schemes {
		cfg := stcc.NewConfig()
		cfg.Rate = 0.04
		cfg.WarmupCycles = 8_000
		cfg.MeasureCycles = 32_000
		cfg.Scheme = s
		res, err := stcc.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		name := string(s.Kind)
		if s.Custom != nil {
			name = s.Custom.Name()
		}
		fmt.Printf("%-14s accepted %.4f flits/node/cycle, latency %5.0f, recoveries %d\n",
			name, res.AcceptedFlits, res.AvgNetworkLatency, res.Recoveries)
	}
}
